GO ?= go

.PHONY: ci fmt-check vet lint build test race shuffle bench-smoke equivalence fuzz-smoke bench-regress obs-smoke service-load accuracy cover profile

# ci is the full gate: formatting, vet + lint, build, tests (with the race
# detector, then again in shuffled order — the race pass includes the
# campaign-service concurrency hammer and its goroutine-leak check), the
# planner equivalence suite, a short fuzz of the band/extent overlap logic
# and the service submit endpoint, a benchmark smoke run, the sweep and
# campaign regression gates, the observability smoke test, the service
# load-test regression gate, the ground-truth accuracy gate, and the
# detection-core coverage floor.
ci: fmt-check vet lint build race shuffle equivalence fuzz-smoke bench-smoke bench-regress obs-smoke service-load accuracy cover

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs staticcheck and govulncheck when installed; neither is vendored,
# so on a bare toolchain this degrades gracefully to the vet gate above.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, go vet covers the gate"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# shuffle reruns the suite in randomized test order to catch tests that
# lean on cross-test state (shared caches, process-global metrics).
shuffle:
	$(GO) test -shuffle=on ./...

# equivalence runs the planned-vs-unplanned bit-identity property tests
# under the race detector (they exercise the parallel sweep path too).
equivalence:
	$(GO) test -run Equivalence -race ./...

# fuzz-smoke briefly fuzzes the Band/extent overlap invariants the render
# planner's culling correctness rests on, the campaign config validator,
# the manifest table renderer (NaN/Inf/negative-frequency inputs), the
# real-input FFT against the complex reference transform, and the campaign
# service's submit endpoint (arbitrary request bodies must answer 400 and
# never panic the server).
fuzz-smoke:
	$(GO) test -run FuzzExtent -fuzz FuzzExtent -fuzztime 5s ./internal/emsim
	$(GO) test -run xxx -fuzz FuzzCampaignValidate -fuzztime 5s ./internal/core
	$(GO) test -run xxx -fuzz FuzzAdaptivePlan -fuzztime 5s ./internal/core
	$(GO) test -run xxx -fuzz FuzzManifestTables -fuzztime 5s ./internal/report
	$(GO) test -run xxx -fuzz FuzzRFFT -fuzztime 5s ./internal/dsp/fft
	$(GO) test -run xxx -fuzz FuzzSubmitScan -fuzztime 5s ./internal/service

# bench-smoke runs the pipeline micro-benchmarks once each — enough to
# catch a benchmark that no longer compiles or panics, without the cost of
# a full timing run. The baseline outputs are discarded: a 1x run must
# never overwrite the committed BENCH_*.json files.
bench-smoke:
	FASE_BENCH_OUT=/dev/null FASE_BENCH_CAMPAIGN_OUT=/dev/null FASE_BENCH_KERNELS_OUT=/dev/null FASE_BENCH_ADAPTIVE_OUT=/dev/null \
		$(GO) test -run xxx -bench 'BenchmarkSceneRender|BenchmarkPeriodogram|BenchmarkSweep$$|BenchmarkCampaignNarrowband|BenchmarkCampaignAdaptive|BenchmarkRender(Regulator|Refresh|SSC)$$' -benchtime 1x .

# bench-regress re-times the wide CLI scan, the narrowband campaign, the
# adaptive campaign, and the three dynamic-kernel microbenchmarks (idle
# and loaded), printing old-vs-new ns/op with the percentage delta for
# each, and fails (with the delta in the message) if any regressed against
# its committed baseline (BENCH_sweep.json at 20%, BENCH_campaign.json and
# BENCH_adaptive.json at 25% — the campaigns add scoring/detection
# variance on top of the sweep — and BENCH_kernels.json at 35%, the
# sub-millisecond kernels being the noisiest measurements). The adaptive
# planner's capture spend is deterministic, so BENCH_adaptive.json's
# captures_used is compared exactly: a planner change that spends more of
# the budget fails the gate even if it happens to run fast. Fresh runs go
# to temp files via FASE_BENCH_OUT / FASE_BENCH_CAMPAIGN_OUT /
# FASE_BENCH_KERNELS_OUT / FASE_BENCH_ADAPTIVE_OUT so the baselines are
# only updated deliberately (run the benchmarks without those variables
# and commit the result).
bench-regress:
	@fresh=$$(mktemp); freshc=$$(mktemp); freshk=$$(mktemp); fresha=$$(mktemp); \
	FASE_BENCH_OUT=$$fresh FASE_BENCH_CAMPAIGN_OUT=$$freshc FASE_BENCH_ADAPTIVE_OUT=$$fresha \
		$(GO) test -run xxx -bench 'BenchmarkWideSweep$$|BenchmarkCampaignNarrowband$$|BenchmarkCampaignAdaptive$$' -benchtime 5x . >/dev/null || exit 1; \
	FASE_BENCH_KERNELS_OUT=$$freshk \
		$(GO) test -run xxx -bench 'BenchmarkRender(Regulator|Refresh|SSC)$$' -benchtime 100x . >/dev/null || exit 1; \
	base=$$(sed -n 's/.*"ns_per_op": \([0-9]*\).*/\1/p' BENCH_sweep.json); \
	now=$$(sed -n 's/.*"ns_per_op": \([0-9]*\).*/\1/p' $$fresh); \
	cbase=$$(sed -n 's/.*"ns_per_op": \([0-9]*\).*/\1/p' BENCH_campaign.json); \
	cnow=$$(sed -n 's/.*"ns_per_op": \([0-9]*\).*/\1/p' $$freshc); \
	abase=$$(sed -n 's/.*"ns_per_op": \([0-9]*\).*/\1/p' BENCH_adaptive.json); \
	anow=$$(sed -n 's/.*"ns_per_op": \([0-9]*\).*/\1/p' $$fresha); \
	capbase=$$(sed -n 's/.*"captures_used": \([0-9]*\).*/\1/p' BENCH_adaptive.json); \
	capnow=$$(sed -n 's/.*"captures_used": \([0-9]*\).*/\1/p' $$fresha); \
	if [ -z "$$base" ] || [ -z "$$now" ]; then echo "bench-regress: missing sweep ns_per_op"; exit 1; fi; \
	if [ -z "$$cbase" ] || [ -z "$$cnow" ]; then echo "bench-regress: missing campaign ns_per_op"; exit 1; fi; \
	if [ -z "$$abase" ] || [ -z "$$anow" ]; then echo "bench-regress: missing adaptive ns_per_op"; exit 1; fi; \
	if [ -z "$$capbase" ] || [ -z "$$capnow" ]; then echo "bench-regress: missing adaptive captures_used"; exit 1; fi; \
	delta=$$(( (now - base) * 100 / base )); \
	echo "bench-regress: BenchmarkWideSweep          $$base -> $$now ns/op ($$delta% vs baseline, limit +20%)"; \
	cdelta=$$(( (cnow - cbase) * 100 / cbase )); \
	echo "bench-regress: BenchmarkCampaignNarrowband $$cbase -> $$cnow ns/op ($$cdelta% vs baseline, limit +25%)"; \
	adelta=$$(( (anow - abase) * 100 / abase )); \
	echo "bench-regress: BenchmarkCampaignAdaptive   $$abase -> $$anow ns/op ($$adelta% vs baseline, limit +25%)"; \
	echo "bench-regress: adaptive captures_used      $$capbase -> $$capnow (must match exactly)"; \
	fail=0; \
	if [ "$$now" -gt "$$((base * 120 / 100))" ]; then \
		echo "bench-regress: FAIL BenchmarkWideSweep $$base -> $$now ns/op is +$$delta%, over the +20% gate"; fail=1; \
	fi; \
	if [ "$$cnow" -gt "$$((cbase * 125 / 100))" ]; then \
		echo "bench-regress: FAIL BenchmarkCampaignNarrowband $$cbase -> $$cnow ns/op is +$$cdelta%, over the +25% gate"; fail=1; \
	fi; \
	if [ "$$anow" -gt "$$((abase * 125 / 100))" ]; then \
		echo "bench-regress: FAIL BenchmarkCampaignAdaptive $$abase -> $$anow ns/op is +$$adelta%, over the +25% gate"; fail=1; \
	fi; \
	if [ "$$capnow" != "$$capbase" ]; then \
		echo "bench-regress: FAIL adaptive captures_used changed $$capbase -> $$capnow (update BENCH_adaptive.json deliberately)"; fail=1; \
	fi; \
	for key in render_regulator_idle render_regulator_loaded \
	           render_refresh_idle render_refresh_loaded \
	           render_ssc_idle render_ssc_loaded; do \
		kbase=$$(sed -n "s/.*\"$${key}_ns_per_op\": \([0-9]*\).*/\1/p" BENCH_kernels.json); \
		know=$$(sed -n "s/.*\"$${key}_ns_per_op\": \([0-9]*\).*/\1/p" $$freshk); \
		if [ -z "$$kbase" ] || [ -z "$$know" ]; then echo "bench-regress: missing $$key ns_per_op"; exit 1; fi; \
		kdelta=$$(( (know - kbase) * 100 / kbase )); \
		echo "bench-regress: $$key $$kbase -> $$know ns/op ($$kdelta% vs baseline, limit +35%)"; \
		if [ "$$know" -gt "$$((kbase * 135 / 100))" ]; then \
			echo "bench-regress: FAIL $$key $$kbase -> $$know ns/op is +$$kdelta%, over the +35% gate"; fail=1; \
		fi; \
	done; \
	rm -f $$fresh $$freshc $$freshk $$fresha; \
	exit $$fail

# profile captures CPU and allocation profiles of the narrowband campaign
# benchmark as artifacts under profiles/ (raw pprof files plus `go tool
# pprof -top` summaries), for before/after comparison when working on the
# render kernels. The benchmark's baseline outputs are discarded — a
# profiling run must never overwrite the committed BENCH_*.json files.
profile:
	@mkdir -p profiles; \
	FASE_BENCH_OUT=/dev/null FASE_BENCH_CAMPAIGN_OUT=/dev/null FASE_BENCH_KERNELS_OUT=/dev/null FASE_BENCH_ADAPTIVE_OUT=/dev/null \
		$(GO) test -run xxx -bench 'BenchmarkCampaignNarrowband$$' -benchtime 10x \
		-cpuprofile profiles/campaign_cpu.pprof -memprofile profiles/campaign_mem.pprof \
		-o profiles/fase.test . >/dev/null || exit 1; \
	$(GO) tool pprof -top -nodecount 25 profiles/fase.test profiles/campaign_cpu.pprof > profiles/campaign_cpu.txt || exit 1; \
	$(GO) tool pprof -top -sample_index=alloc_space -nodecount 25 profiles/fase.test profiles/campaign_mem.pprof > profiles/campaign_mem.txt || exit 1; \
	echo "profile: wrote profiles/campaign_{cpu,mem}.pprof and -top summaries"

# service-load is the campaign-service regression gate: it runs the full
# load test (10 tenants × 6 concurrent campaigns against a deliberately
# saturated queue) into a temp file and compares it against the committed
# BENCH_service.json. The job accounting is deterministic — jobs_total,
# jobs_completed, shards_total (5 per job), and detections_total (seeded
# campaigns are bit-identical) must match the baseline exactly — while
# the measured performance gets wide tolerances suited to a saturation
# test on shared hardware: p99 submit-to-complete latency may grow to 4×
# the baseline and throughput may drop to 1/4 before the gate fails.
# Refresh the baseline deliberately with:
# FASE_BENCH_SERVICE_OUT=$$PWD/BENCH_service.json go test -run TestServiceLoad -count=1 ./internal/service/loadtest
service-load:
	@freshs=$$(mktemp); \
	FASE_BENCH_SERVICE_OUT=$$freshs \
		$(GO) test -run TestServiceLoad -count=1 ./internal/service/loadtest >/dev/null || { rm -f $$freshs; exit 1; }; \
	fail=0; \
	for key in service_jobs_total service_jobs_completed service_shards_total service_detections_total; do \
		base=$$(sed -n "s/.*\"$$key\": \([0-9]*\).*/\1/p" BENCH_service.json); \
		now=$$(sed -n "s/.*\"$$key\": \([0-9]*\).*/\1/p" $$freshs); \
		if [ -z "$$base" ] || [ -z "$$now" ]; then echo "service-load: missing $$key"; rm -f $$freshs; exit 1; fi; \
		echo "service-load: $$key $$base -> $$now (must match exactly)"; \
		if [ "$$now" != "$$base" ]; then \
			echo "service-load: FAIL $$key changed $$base -> $$now (update BENCH_service.json deliberately)"; fail=1; \
		fi; \
	done; \
	p99base=$$(sed -n 's/.*"service_p99_us": \([0-9]*\).*/\1/p' BENCH_service.json); \
	p99now=$$(sed -n 's/.*"service_p99_us": \([0-9]*\).*/\1/p' $$freshs); \
	tbase=$$(sed -n 's/.*"service_throughput_millijobs_per_sec": \([0-9]*\).*/\1/p' BENCH_service.json); \
	tnow=$$(sed -n 's/.*"service_throughput_millijobs_per_sec": \([0-9]*\).*/\1/p' $$freshs); \
	if [ -z "$$p99base" ] || [ -z "$$p99now" ]; then echo "service-load: missing p99"; rm -f $$freshs; exit 1; fi; \
	if [ -z "$$tbase" ] || [ -z "$$tnow" ]; then echo "service-load: missing throughput"; rm -f $$freshs; exit 1; fi; \
	echo "service-load: p99 $$p99base -> $$p99now us (limit 4x baseline)"; \
	echo "service-load: throughput $$tbase -> $$tnow millijobs/s (floor baseline/4)"; \
	if [ "$$p99now" -gt "$$((p99base * 4))" ]; then \
		echo "service-load: FAIL p99 latency $$p99base -> $$p99now us, over the 4x gate"; fail=1; \
	fi; \
	if [ "$$tnow" -lt "$$((tbase / 4))" ]; then \
		echo "service-load: FAIL throughput $$tbase -> $$tnow millijobs/s, under the 1/4 gate"; fail=1; \
	fi; \
	rm -f $$freshs; \
	exit $$fail

# accuracy runs the ground-truth harness (fase -verify): a 60-scenario
# seeded-random machine corpus scanned by the unchanged pipeline, clean,
# through the default fault-injection plan, and re-run with the adaptive
# planner across the budget fractions (-verify-budget), scored against
# each scene's planted carriers. Fails if the clean-corpus F1 or the
# fault-corpus precision drops below the committed VERIFY_baseline.json
# (or the absolute floors baked into internal/verify), or if no adaptive
# budget point reaches 95% of the exhaustive recall within 30% of the
# exhaustive captures. Regenerate the baseline deliberately with:
# fase -verify -verify-budget -verify-baseline-out VERIFY_baseline.json
accuracy:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/fase ./cmd/fase || { rm -rf $$tmp; exit 1; }; \
	$$tmp/fase -verify -verify-budget -verify-out $$tmp/report.json -verify-roc-csv $$tmp/roc.csv \
		-manifest-out $$tmp/manifest.json \
		-verify-baseline VERIFY_baseline.json || { rm -rf $$tmp; exit 1; }; \
	$$tmp/fase -validate-manifest $$tmp/manifest.json || { rm -rf $$tmp; exit 1; }; \
	for f in report.json roc.csv; do \
		[ -s $$tmp/$$f ] || { echo "accuracy: $$f missing or empty"; rm -rf $$tmp; exit 1; }; \
	done; \
	grep -q '"accuracy"' $$tmp/manifest.json || { echo "accuracy: manifest missing accuracy stats"; rm -rf $$tmp; exit 1; }; \
	grep -q '"budget"' $$tmp/report.json || { echo "accuracy: report missing recall-vs-budget sweep"; rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; \
	echo "accuracy: ok"

# cover enforces a statement-coverage floor on the detection core — the
# package the accuracy gate exists to protect.
CORE_COVER_FLOOR ?= 85
cover:
	@prof=$$(mktemp); \
	$(GO) test -coverprofile=$$prof ./internal/core >/dev/null || { rm -f $$prof; exit 1; }; \
	pct=$$($(GO) tool cover -func=$$prof | awk '/^total:/ { sub(/%/, "", $$3); print int($$3) }'); \
	rm -f $$prof; \
	if [ -z "$$pct" ]; then echo "cover: could not read total coverage"; exit 1; fi; \
	echo "cover: internal/core $$pct% (floor $(CORE_COVER_FLOOR)%)"; \
	if [ "$$pct" -lt "$(CORE_COVER_FLOOR)" ]; then \
		echo "cover: internal/core coverage below floor"; exit 1; \
	fi

# obs-smoke runs a tiny instrumented campaign through the CLI with every
# observability output enabled, then validates the run manifest and event
# journal against their schemas, sanity-checks the trace and metrics
# files, archives two runs into a run-history store and diffs them,
# exercises the live debug server end-to-end (/progress, Prometheus
# /metrics, and the /events SSE stream) against a lingering scan, and
# drives `fase serve` end to end: submit a scan over HTTP, poll it to
# completion, fetch the archived result, confirm the run landed in the
# store at its content address, and shut the server down with SIGTERM.
obs-smoke:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/fase ./cmd/fase || exit 1; \
	$$tmp/fase -f1 250e3 -f2 550e3 -fres 200 -fdelta 1e3 \
		-manifest-out $$tmp/run.json -trace-out $$tmp/trace.json \
		-metrics-out $$tmp/metrics.json -events-out $$tmp/events.jsonl \
		-runs-dir $$tmp/runs >/dev/null || { rm -rf $$tmp; exit 1; }; \
	$$tmp/fase -validate-manifest $$tmp/run.json || { rm -rf $$tmp; exit 1; }; \
	$$tmp/fase -validate-events $$tmp/events.jsonl || { rm -rf $$tmp; exit 1; }; \
	for f in run.json trace.json metrics.json events.jsonl; do \
		[ -s $$tmp/$$f ] || { echo "obs-smoke: $$f missing or empty"; rm -rf $$tmp; exit 1; }; \
	done; \
	grep -q '"traceEvents"' $$tmp/trace.json || { echo "obs-smoke: trace output malformed"; rm -rf $$tmp; exit 1; }; \
	grep -q '"fase_core_campaigns_total": 1' $$tmp/metrics.json || { echo "obs-smoke: metrics snapshot malformed"; rm -rf $$tmp; exit 1; }; \
	grep -q '"components_skipped": 0' $$tmp/run.json && { echo "obs-smoke: planner recorded no skips"; rm -rf $$tmp; exit 1; }; \
	grep -q '"kind":"campaign_start"' $$tmp/events.jsonl || { echo "obs-smoke: journal missing campaign_start"; rm -rf $$tmp; exit 1; }; \
	grep -q '"kind":"sweep_end"' $$tmp/events.jsonl || { echo "obs-smoke: journal missing sweep events"; rm -rf $$tmp; exit 1; }; \
	grep -q '"build"' $$tmp/run.json || { echo "obs-smoke: manifest missing build info"; rm -rf $$tmp; exit 1; }; \
	$$tmp/fase -f1 250e3 -f2 550e3 -fres 200 -fdelta 1e3 -seed 2 \
		-runs-dir $$tmp/runs >/dev/null || { rm -rf $$tmp; exit 1; }; \
	$$tmp/fase runs -dir $$tmp/runs | grep -q '^@1' || { echo "obs-smoke: run store did not list two runs"; rm -rf $$tmp; exit 1; }; \
	$$tmp/fase diff -dir $$tmp/runs @1 @0 > $$tmp/diff.txt || { rm -rf $$tmp; exit 1; }; \
	grep -q '^run diff:' $$tmp/diff.txt || { echo "obs-smoke: diff report malformed"; rm -rf $$tmp; exit 1; }; \
	grep -q 'detections (matched within' $$tmp/diff.txt || { echo "obs-smoke: diff missing detection section"; rm -rf $$tmp; exit 1; }; \
	$$tmp/fase -f1 250e3 -f2 350e3 -fres 400 -fdelta 2e3 \
		-pprof 127.0.0.1:0 -linger 10s > $$tmp/live.log 2>&1 & pid=$$!; \
	addr=""; i=0; while [ $$i -lt 100 ]; do \
		addr=$$(sed -n 's|^pprof: http://\([^/]*\)/debug.*|\1|p' $$tmp/live.log); \
		[ -n "$$addr" ] && break; i=$$((i+1)); sleep 0.1; \
	done; \
	[ -n "$$addr" ] || { echo "obs-smoke: debug server never came up"; kill $$pid 2>/dev/null; rm -rf $$tmp; exit 1; }; \
	curl -sf "http://$$addr/progress" | grep -q '"stage"' || { echo "obs-smoke: /progress malformed"; kill $$pid 2>/dev/null; rm -rf $$tmp; exit 1; }; \
	curl -sf "http://$$addr/metrics?format=prom" | grep -q '^fase_core_campaigns_total' || { echo "obs-smoke: prometheus exposition malformed"; kill $$pid 2>/dev/null; rm -rf $$tmp; exit 1; }; \
	curl -sN --max-time 3 "http://$$addr/events" | grep -q 'campaign_start' || { echo "obs-smoke: /events SSE stream malformed"; kill $$pid 2>/dev/null; rm -rf $$tmp; exit 1; }; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	$$tmp/fase serve -addr 127.0.0.1:0 -runs-dir $$tmp/srvruns > $$tmp/serve.log 2>&1 & spid=$$!; \
	saddr=""; i=0; while [ $$i -lt 100 ]; do \
		saddr=$$(sed -n 's|^serve: listening on http://\(.*\)|\1|p' $$tmp/serve.log); \
		[ -n "$$saddr" ] && break; i=$$((i+1)); sleep 0.1; \
	done; \
	[ -n "$$saddr" ] || { echo "obs-smoke: campaign server never came up"; kill $$spid 2>/dev/null; rm -rf $$tmp; exit 1; }; \
	sid=$$(curl -sf -X POST "http://$$saddr/v1/scans" -d '{"tenant":"smoke","system":"i7-desktop","scan":{"f1_hz":300e3,"f2_hz":360e3,"fres_hz":500,"falt1_hz":43.3e3,"fdelta_hz":500,"seed":4}}' \
		| sed -n 's/.*"id": "\([^"]*\)".*/\1/p'); \
	[ -n "$$sid" ] || { echo "obs-smoke: serve submit failed"; kill $$spid 2>/dev/null; rm -rf $$tmp; exit 1; }; \
	state=""; i=0; while [ $$i -lt 100 ]; do \
		state=$$(curl -sf "http://$$saddr/v1/scans/$$sid" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p'); \
		[ "$$state" = "done" ] && break; \
		case "$$state" in failed|cancelled) break;; esac; \
		i=$$((i+1)); sleep 0.1; \
	done; \
	[ "$$state" = "done" ] || { echo "obs-smoke: serve scan ended '$$state'"; kill $$spid 2>/dev/null; rm -rf $$tmp; exit 1; }; \
	curl -sf "http://$$saddr/v1/scans/$$sid/result" | grep -q '"schema"' || { echo "obs-smoke: serve result malformed"; kill $$spid 2>/dev/null; rm -rf $$tmp; exit 1; }; \
	curl -sf "http://$$saddr/v1/stats" | grep -q '"completed_total": 1' || { echo "obs-smoke: serve stats malformed"; kill $$spid 2>/dev/null; rm -rf $$tmp; exit 1; }; \
	ls $$tmp/srvruns/*.json >/dev/null 2>&1 || { echo "obs-smoke: serve archived no run"; kill $$spid 2>/dev/null; rm -rf $$tmp; exit 1; }; \
	kill -TERM $$spid 2>/dev/null; wait $$spid; srv=$$?; \
	[ "$$srv" -eq 0 ] || { echo "obs-smoke: serve exited $$srv on SIGTERM"; rm -rf $$tmp; exit 1; }; \
	grep -q 'serve: done' $$tmp/serve.log || { echo "obs-smoke: serve shutdown summary missing"; rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; \
	echo "obs-smoke: ok"
