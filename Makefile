GO ?= go

.PHONY: ci fmt-check vet build test race bench-smoke equivalence fuzz-smoke bench-regress

# ci is the full gate: formatting, vet, build, tests (with the race
# detector), the planner equivalence suite, a short fuzz of the band/extent
# overlap logic, a benchmark smoke run, and the wide-sweep regression gate.
ci: fmt-check vet build race equivalence fuzz-smoke bench-smoke bench-regress

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# equivalence runs the planned-vs-unplanned bit-identity property tests
# under the race detector (they exercise the parallel sweep path too).
equivalence:
	$(GO) test -run Equivalence -race ./...

# fuzz-smoke briefly fuzzes the Band/extent overlap invariants the render
# planner's culling correctness rests on.
fuzz-smoke:
	$(GO) test -run FuzzExtent -fuzz FuzzExtent -fuzztime 5s ./internal/emsim

# bench-smoke runs the pipeline micro-benchmarks once each — enough to
# catch a benchmark that no longer compiles or panics, without the cost of
# a full timing run.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkSceneRender|BenchmarkPeriodogram|BenchmarkSweep$$|BenchmarkCampaignNarrowband' -benchtime 1x .

# bench-regress re-times the wide CLI scan and fails if it regressed more
# than 20% against the committed BENCH_sweep.json baseline. The fresh run
# is written to a temp file via FASE_BENCH_OUT so the baseline is only
# updated deliberately (run the benchmark without FASE_BENCH_OUT and
# commit the result).
bench-regress:
	@fresh=$$(mktemp); \
	FASE_BENCH_OUT=$$fresh $(GO) test -run xxx -bench 'BenchmarkWideSweep$$' -benchtime 5x . >/dev/null || exit 1; \
	base=$$(sed -n 's/.*"ns_per_op": \([0-9]*\).*/\1/p' BENCH_sweep.json); \
	now=$$(sed -n 's/.*"ns_per_op": \([0-9]*\).*/\1/p' $$fresh); \
	rm -f $$fresh; \
	if [ -z "$$base" ] || [ -z "$$now" ]; then echo "bench-regress: missing ns_per_op"; exit 1; fi; \
	limit=$$((base * 120 / 100)); \
	echo "bench-regress: baseline $$base ns/op, fresh $$now ns/op, limit $$limit"; \
	if [ "$$now" -gt "$$limit" ]; then \
		echo "bench-regress: BenchmarkWideSweep regressed >20%"; exit 1; \
	fi
