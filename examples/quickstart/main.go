// Quickstart: run FASE against the simulated Intel Core i7 desktop and
// print every carrier that main-memory activity modulates.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fase"
)

func main() {
	sys, err := fase.LookupSystem("i7-desktop")
	if err != nil {
		log.Fatal(err)
	}
	// Scene = the machine's emitters + a metropolitan RF environment full
	// of AM stations FASE must reject.
	runner := fase.NewRunner(sys.Scene(1, true))

	// The paper's first campaign (Figure 10, row 1): 0.1–4 MHz at 50 Hz
	// resolution, five alternation frequencies starting at 43.3 kHz.
	res := runner.Run(fase.Campaign{
		F1: 100e3, F2: 4e6, Fres: 50,
		FAlt1: 43.3e3, FDelta: 500,
		X: fase.LDM, Y: fase.LDL1, // alternate LLC misses vs L1 hits
		Seed: 1,
	})

	fmt.Printf("%s, LDM/LDL1 — %d activity-modulated carriers:\n", sys.Name, len(res.Detections))
	for _, d := range res.Detections {
		fmt.Printf("  %8.1f kHz  score %8.1f  %6.1f dBm  modulation depth %5.1f dB\n",
			d.Freq/1e3, d.Score, d.MagnitudeDBm, d.DepthDB)
	}

	// Group into harmonic sets: each set is one physical source.
	fmt.Println("\nharmonic sets (one per physical source):")
	for _, set := range fase.GroupHarmonics(res.Detections, 0) {
		fmt.Printf("  fundamental %8.1f kHz with %d harmonic(s)\n",
			set.Fundamental/1e3, len(set.Members))
	}
}
