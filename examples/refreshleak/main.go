// Refreshleak: the DRAM-refresh side channel of §4.2.
//
// Memory refresh emits a comb of harmonics whose periodicity is disrupted
// by memory traffic, so the comb *weakens* as memory activity rises — an
// at-a-distance readout of how busy memory is. This example reproduces
// the three observations the paper chains together:
//
//  1. FASE finds the refresh comb (512 kHz lines on the i7);
//
//  2. the line is strongest at idle and weakens monotonically with load;
//
//  3. a near-field probe reveals the underlying 128 kHz (tREFI) grid,
//     identifying memory refresh as the source.
//
//     go run ./examples/refreshleak
package main

import (
	"fmt"
	"log"

	"fase"
)

func main() {
	sys, err := fase.LookupSystem("i7-desktop")
	if err != nil {
		log.Fatal(err)
	}
	scene := sys.Scene(1, true)

	// 1. FASE detection around the refresh comb.
	runner := fase.NewRunner(scene)
	res := runner.Run(fase.Campaign{
		F1: 450e3, F2: 1.1e6, Fres: 50,
		FAlt1: 43.3e3, FDelta: 500,
		X: fase.LDM, Y: fase.LDL1, Seed: 3,
	})
	fmt.Println("FASE detections, 450 kHz – 1.1 MHz (LDM/LDL1):")
	for _, d := range res.Detections {
		fmt.Printf("  %8.2f kHz  score %8.1f  %6.1f dBm\n", d.Freq/1e3, d.Score, d.MagnitudeDBm)
	}

	// 2. The inverse-activity signature: measure the 512 kHz line while
	// the machine runs increasing constant memory load.
	an := fase.NewAnalyzer(fase.AnalyzerConfig{Fres: 100})
	fmt.Println("\n512 kHz refresh line vs memory activity:")
	for _, duty := range []float64{0, 0.5, 1.0} {
		var act *fase.Trace
		switch duty {
		case 0:
			act = fase.ConstantActivity(fase.LDL1) // no memory traffic
		case 1:
			act = fase.ConstantActivity(fase.LDM) // continuous misses
		default:
			act = fase.Alternation(fase.LDM, fase.LDL1, 40e3, 1.0, 3)
		}
		s := an.Sweep(fase.SweepRequest{Scene: scene, F1: 500e3, F2: 524e3, Activity: act, Seed: 5})
		i := s.MaxIn(510e3, 514e3)
		fmt.Printf("  memory duty %3.0f%%: %6.1f dBm\n", duty*100, s.DBm(i))
	}

	// 3. Near-field localization: the probe reveals the full 128 kHz grid
	// (tREFI = 7.8125 µs), identifying refresh as the source.
	near := an.Sweep(fase.SweepRequest{
		Scene: scene, F1: 100e3, F2: 600e3, Seed: 6,
		NearField: true, NearFieldGainDB: 30,
	})
	fmt.Println("\nnear-field probe at the DIMMs (128 kHz grid):")
	for _, f := range []float64{128e3, 256e3, 384e3, 512e3} {
		i := near.MaxIn(f-1e3, f+1e3)
		fmt.Printf("  %6.0f kHz: %6.1f dBm\n", f/1e3, near.DBm(i))
	}
	fmt.Println("\nmitigation (§4.2): randomizing refresh issue times spreads these lines without violating DRAM standards")
}
