// Regulators: separate the voltage-regulator carriers of the i7 desktop
// by the system aspect that modulates them (§4.1).
//
// A switching regulator's duty cycle tracks the current its domain draws,
// so LDM/LDL1 alternation (memory vs L1) modulates the DIMM and memory
// interface regulators, while LDL2/LDL1 alternation (L2 vs L1) modulates
// only the core supply regulator. Cross-referencing both campaigns yields
// per-component power side channels — the paper's "component-by-component
// power consumption information" available at a distance.
//
//	go run ./examples/regulators
package main

import (
	"fmt"
	"log"
	"strings"

	"fase"
)

func main() {
	sys, err := fase.LookupSystem("i7-desktop")
	if err != nil {
		log.Fatal(err)
	}
	runner := fase.NewRunner(sys.Scene(1, true))

	base := fase.Campaign{
		F1: 100e3, F2: 1.2e6, Fres: 50,
		FAlt1: 43.3e3, FDelta: 500,
		Seed: 7,
	}

	memory := base
	memory.X, memory.Y = fase.LDM, fase.LDL1
	fmt.Println("campaign 1: LDM/LDL1 (memory vs L1) ...")
	memRes := runner.Run(memory)

	onchip := base
	onchip.X, onchip.Y = fase.LDL2, fase.LDL1
	fmt.Println("campaign 2: LDL2/LDL1 (L2 vs L1) ...")
	chipRes := runner.Run(onchip)

	fmt.Println("\ncarrier classification (§2.2):")
	for _, cc := range fase.Classify(memRes, chipRes, 0) {
		fmt.Printf("  %9.2f kHz  %-16s  %6.1f dBm  pairs: %s\n",
			cc.Freq/1e3, cc.Class, cc.MagnitudeDBm, strings.Join(cc.Pairs, ", "))
	}

	fmt.Println("\nwhat this means for an attacker:")
	fmt.Printf("  - memory-related carriers (%.0f kHz set) leak DRAM/memory-controller power\n", sys.MemRegulator.FSw/1e3)
	fmt.Printf("  - on-chip carriers (%.1f kHz set) leak core power: a remote per-domain power side channel\n", sys.CoreRegulator.FSw/1e3)
}
