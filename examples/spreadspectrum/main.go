// Spreadspectrum: finding and defeating spread-spectrum clocking (§4.3).
//
// EMC regulations push vendors to sweep clock frequencies (SSC) so the
// emitted energy spreads over ~1 MHz instead of standing in one line. The
// paper shows (a) FASE still finds the modulated DRAM clock — reported as
// two carriers at the spread edges — and (b) the spreading only helps in
// an averaged sense: a carrier-tracking receiver follows the sweep and
// recovers the full signal power.
//
//	go run ./examples/spreadspectrum
package main

import (
	"fmt"
	"log"

	"fase"
)

func main() {
	sys, err := fase.LookupSystem("i7-desktop")
	if err != nil {
		log.Fatal(err)
	}
	scene := sys.Scene(1, true)
	f0 := sys.DRAMClock.F0 // 333 MHz, 1 MHz down-spread

	// (a) FASE detection with campaign-3 parameters (Figure 10): f_alt
	// large enough to move side-bands outside the spread carrier.
	runner := fase.NewRunner(scene)
	res := runner.Run(fase.Campaign{
		F1: f0 - 4e6, F2: f0 + 3e6, Fres: 500,
		FAlt1: 1.8e6, FDelta: 100e3,
		MergeBins: 200,
		X:         fase.LDM, Y: fase.LDL1, Seed: 9,
	})
	fmt.Println("FASE detections around the DRAM clock (LDM/LDL1):")
	for _, d := range res.Detections {
		fmt.Printf("  %10.4f MHz  score %8.1f\n", d.Freq/1e6, d.Score)
	}
	fmt.Printf("(the spread clock is reported as carriers at its spread edges, %.0f and %.0f MHz)\n\n",
		(f0-sys.DRAMClock.SpreadHz)/1e6, f0/1e6)

	// (b) Carrier tracking: a spectrogram's per-frame peak follows the
	// sweep, so the attacker recovers the instantaneous carrier and the
	// full (unspread) signal power after demodulation.
	fmt.Println("carrier tracking (spectrogram peak track):")
	// Render ~4 ms of baseband around the clock while memory is busy.
	capture := fase.CaptureBaseband(scene, f0-0.5e6, 8e6, 1<<15, fase.ConstantActivity(fase.LDM), 10)
	sg := fase.STFT(capture, 8e6, f0-0.5e6, 2048, 1024)
	track := sg.PeakTrack()
	lo, hi := track[0], track[0]
	for _, f := range track {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	fmt.Printf("  %d frames; tracked carrier sweeps %.3f – %.3f MHz (configured spread: %.3f – %.3f MHz)\n",
		len(track), lo/1e6, hi/1e6, (f0-sys.DRAMClock.SpreadHz)/1e6, f0/1e6)
	st := fase.MeasureFM(capture, 8e6, 32)
	fmt.Printf("  FM statistics: deviation %.0f kHz RMS, peak-to-peak %.0f kHz (the SSC sweep)\n",
		st.DeviationHz/1e3, st.PeakToPeak/1e3)
	fmt.Println("\nconclusion (§4.3): predictable spread-spectrum clocking does not mitigate information leakage")
}
