// Radioreject: why FASE beats generic AM detectors in a crowded band.
//
// The AM broadcast band (540–1600 kHz) is full of strong, genuinely
// amplitude-modulated signals that have nothing to do with the victim
// system. A communications-intelligence AM classifier flags them all; the
// single-spectrum "symmetric side-band" heuristic of §2.3 adds its own
// coincidence false positives. FASE reports only the carriers modulated
// by the micro-benchmark (§2.3: "it is painfully expensive to shield a
// measurement setup from broadcast signals").
//
//	go run ./examples/radioreject
package main

import (
	"fmt"
	"log"

	"fase"
)

func main() {
	sys, err := fase.LookupSystem("i7-desktop")
	if err != nil {
		log.Fatal(err)
	}
	// Scene WITH the metropolitan AM environment (a dozen stations).
	runner := fase.NewRunner(sys.Scene(1, true))

	// Scan exactly the AM broadcast band plus margins.
	res := runner.Run(fase.Campaign{
		F1: 500e3, F2: 1.7e6, Fres: 50,
		FAlt1: 43.3e3, FDelta: 500,
		X: fase.LDM, Y: fase.LDL1, Seed: 2,
	})

	fmt.Println("FASE detections, 0.5–1.7 MHz (AM broadcast band):")
	stations := []float64{560e3, 615e3, 680e3, 750e3, 790e3, 940e3,
		1010e3, 1160e3, 1340e3, 1380e3, 1400e3, 1520e3}
	flagged := 0
	for _, d := range res.Detections {
		onStation := ""
		for _, f := range stations {
			if d.Freq > f-3e3 && d.Freq < f+3e3 {
				onStation = "  <-- AM STATION (would be a false positive)"
				flagged++
			}
		}
		fmt.Printf("  %8.2f kHz  score %8.1f  %6.1f dBm%s\n",
			d.Freq/1e3, d.Score, d.MagnitudeDBm, onStation)
	}
	fmt.Printf("\nstations in band: %d; stations reported by FASE: %d\n", len(stations), flagged)
	if flagged == 0 {
		fmt.Println("FASE correctly identifies that broadcast AM signals are not caused by the micro-benchmark")
	}

	// For contrast: how strong the stations actually are in the spectrum.
	an := fase.NewAnalyzer(fase.AnalyzerConfig{Fres: 50})
	s := an.Sweep(fase.SweepRequest{
		Scene: runner.Scene, F1: 500e3, F2: 1.7e6,
		Activity: fase.Alternation(fase.LDM, fase.LDL1, 43.3e3, 2.0, 2), Seed: 2,
	})
	fmt.Println("\nfor scale, the strongest in-band signals are the stations themselves:")
	for _, f := range []float64{560e3, 680e3, 750e3, 1010e3} {
		i := s.MaxIn(f-2e3, f+2e3)
		fmt.Printf("  station at %7.0f kHz: %6.1f dBm\n", f/1e3, s.DBm(i))
	}
}
