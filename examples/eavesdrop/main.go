// Eavesdrop: the attack FASE enables, and the mitigation the paper
// proposes — end to end.
//
// A victim program's secret-dependent memory activity (think
// square-and-multiply with key-dependent table lookups) amplitude-
// modulates the DIMM regulator's 315 kHz carrier. The attacker, having
// located that carrier with FASE, tunes a receiver to it, demodulates,
// and reads the secret bits at a distance (§1, §4.1). Randomizing the
// DRAM refresh interval (§4.2's proposed fix) kills the refresh channel
// but, as the paper implies, does nothing for regulator leakage — each
// channel needs its own "surgical" mitigation (§6).
//
//	go run ./examples/eavesdrop
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fase"
)

func main() {
	sys, err := fase.LookupSystem("i7-desktop")
	if err != nil {
		log.Fatal(err)
	}
	scene := sys.Scene(1, true)

	// Step 1: FASE locates the activity-modulated carriers (abbreviated:
	// we scan just the regulator band here; see examples/quickstart for
	// the full campaign).
	runner := fase.NewRunner(scene)
	res := runner.Run(fase.Campaign{
		F1: 250e3, F2: 550e3, Fres: 100,
		FAlt1: 43.3e3, FDelta: 1e3,
		X: fase.LDM, Y: fase.LDL1, Seed: 11,
	})
	fmt.Println("step 1 — FASE finds the leaking carriers:")
	for _, d := range res.Detections {
		fmt.Printf("  %8.1f kHz  score %8.1f\n", d.Freq/1e3, d.Score)
	}

	// Step 2: the victim runs a 256-bit secret-dependent access pattern;
	// the attacker demodulates the strongest carrier found.
	r := rand.New(rand.NewSource(99))
	secret := make([]byte, 256)
	for i := range secret {
		secret[i] = byte(r.Intn(2))
	}
	carrier := res.Detections[0].Freq // 315 kHz
	rx := &fase.Receiver{Carrier: carrier, Bandwidth: 15e3}
	lk := fase.QuantifyLeakage(rx, scene, secret, fase.LDM, fase.LDL1, 250e-6, 12)
	fmt.Printf("\nstep 2 — eavesdropping through %.1f kHz (4 kbit/s):\n", carrier/1e3)
	fmt.Printf("  bit error rate %.3f, class SNR %.1f dB, capacity %.2f bits/bit → %.0f bit/s leaked\n",
		lk.BER, lk.SNRdB, lk.BitsPerSymbol, lk.BitsPerSymbol/250e-6)

	// Step 3: the same attack through the refresh comb, before and after
	// the paper's proposed refresh randomization.
	fmt.Println("\nstep 3 — refresh channel, before/after interval randomization (§4.2):")
	for _, dither := range []float64{0, 0.3} {
		s2, _ := fase.LookupSystem("i7-desktop")
		s2.Refresh.IntervalDither = dither
		sc2 := s2.Scene(1, true)
		rx2 := &fase.Receiver{Carrier: 512e3, Bandwidth: 15e3}
		lk2 := fase.QuantifyLeakage(rx2, sc2, secret, fase.LDM, fase.LDL1, 1e-3, 13)
		fmt.Printf("  dither ±%2.0f%% tREFI: BER %.3f, capacity %.2f bits/bit\n",
			dither*100, lk2.BER, lk2.BitsPerSymbol)
	}
	fmt.Println("\nconclusion: FASE tells the defender exactly which signals to fix, and the fix is verifiable")
}
