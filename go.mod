module fase

go 1.22
